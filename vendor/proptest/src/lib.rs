//! Offline stand-in for the `proptest` crate.
//!
//! The workspace's containers build without network access, so the real
//! proptest cannot be fetched. This stub implements a *working* (if
//! minimal) property-testing engine over the strategy surface the
//! workspace's tests actually use: integer/float ranges, `any::<T>()`,
//! tuples of strategies, and `prop::collection::vec`. Each `#[test]`
//! inside a [`proptest!`] block runs a fixed number of deterministic
//! cases seeded from the test's name, so failures reproduce exactly.
//!
//! `prop_assert!`/`prop_assert_eq!` forward to the std assertion macros:
//! unlike real proptest there is no input shrinking, but a failing case
//! still reports the generated values via the assertion message.

pub mod test_runner {
    /// Deterministic splitmix64 generator used for value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a fixed seed.
        #[must_use]
        pub fn deterministic(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (modulo bias is acceptable here).
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let width = (self.end as i128 - self.start as i128).max(1) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing a constant value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain generation strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The whole-domain strategy for `T`, as in `any::<u64>()`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with element strategy and length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector strategy: `vec(0u64..100, 1..40)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace the prelude exposes (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Number of cases each property runs (fixed; cases are deterministic).
pub const CASES: u32 = 64;

#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..$crate::CASES {
                    let mut __rng = $crate::test_runner::TestRng::deterministic({
                        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                        for b in stringify!($name).bytes() {
                            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
                        }
                        h ^ u64::from(__case).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    });
                    $crate::__proptest_bindings!(__rng, $($args)*);
                    $body
                }
            }
        )*
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bindings {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bindings!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bindings!($rng, $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -5i32..5, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_len_in_range(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn tuples_and_any(pair in (0usize..4, any::<bool>()), seed: u64) {
            prop_assert!(pair.0 < 4);
            let _ = (pair.1, seed);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic(7);
        let mut b = crate::test_runner::TestRng::deterministic(7);
        let s = crate::prop::collection::vec(0u64..100, 1..20);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
