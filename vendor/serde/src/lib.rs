//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in containers with no network access, so the real
//! serde cannot be fetched. Nothing in the workspace actually serializes —
//! the `#[derive(Serialize, Deserialize)]` attributes exist so downstream
//! consumers *could* persist simulator state — so this stub provides the
//! two trait names and derive macros that expand to nothing. Swapping the
//! `[patch.crates-io]` entry back to the real serde is a no-op for the
//! simulator's behaviour.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Namespace stand-in so `serde::de::...` paths resolve if ever needed.
pub mod de {
    pub use super::Deserialize;
}

/// Namespace stand-in so `serde::ser::...` paths resolve if ever needed.
pub mod ser {
    pub use super::Serialize;
}
