//! Whole-machine determinism and seed-sensitivity guarantees.

use affinity_repro::{
    run_experiment, AffinityMode, DataplaneMode, Direction, ExperimentConfig, RunMetrics, SteerSpec,
};

/// One golden cell: fixed seed and fixed message counts, deliberately
/// independent of the bench harness's count-scaling so the snapshot only
/// moves when simulation *semantics* move.
fn golden_cell(direction: Direction, size: u64, mode: AffinityMode) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_sut(direction, size, mode).with_seed(0x5EED);
    config.workload.warmup_messages = 6;
    config.workload.measure_messages = 18;
    config
}

/// Renders every field of the metrics (scalars, per-CPU vectors, the full
/// event-counter bank, per-bin counters) into one stable line.
fn snapshot_line(label: &str, m: &RunMetrics) -> String {
    format!("{label}: {m:?}")
}

/// Compares rendered snapshot lines against the committed golden file,
/// or rewrites it when `AFFSIM_BLESS` is set (only for a deliberate
/// semantic change): `AFFSIM_BLESS=1 cargo test --test determinism golden`.
fn compare_or_bless(file: &str, lines: &[String]) {
    let rendered = format!("{}\n", lines.join("\n"));
    let path = format!("{}/tests/golden/{file}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("AFFSIM_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).expect("committed golden snapshot");
    for (got, want) in rendered.lines().zip(expected.lines()) {
        assert_eq!(
            got, want,
            "simulation results diverged from the golden snapshot {file}"
        );
    }
    assert_eq!(rendered, expected, "golden snapshot line count changed");
}

/// Guards the optimization work on the memory/coherence hot path: results
/// must stay bit-identical to the snapshot captured *before* the flat
/// directory, batched touches, and residency fast path landed.
#[test]
fn results_match_committed_golden_snapshot() {
    let mut lines = Vec::new();
    for &(dir, size) in &[
        (Direction::Tx, 65536),
        (Direction::Tx, 128),
        (Direction::Rx, 65536),
        (Direction::Rx, 128),
    ] {
        for mode in [AffinityMode::None, AffinityMode::Full] {
            let label = format!("{dir} {size}B {}", mode.label());
            let run = run_experiment(&golden_cell(dir, size, mode)).unwrap();
            lines.push(snapshot_line(&label, &run.metrics));
        }
    }
    compare_or_bless("pre_optimization.snap", &lines);
}

/// Guards the scaled configurations the paper never ran: 4 CPUs with one
/// NIC queue per CPU and 12 flows multiplexed over them. Pins down the
/// flow→NIC steering (round-robin in the Figure 3 modes, hash-steered
/// under RSS) and the multi-flow bottom-half poll loop, so scale-path
/// refactors can't silently shift results.
#[test]
fn four_cpu_scale_matches_committed_golden_snapshot() {
    let mut lines = Vec::new();
    for mode in [AffinityMode::Irq, AffinityMode::Full, AffinityMode::Rss] {
        for dir in [Direction::Tx, Direction::Rx] {
            let mut config = ExperimentConfig::scale(dir, 4, 12, mode).with_seed(0x5EED);
            config.workload.warmup_messages = 2;
            config.workload.measure_messages = 6;
            let label = format!("{dir} 4cpu 12flows {}", mode.label());
            let run = run_experiment(&config).unwrap();
            lines.push(snapshot_line(&label, &run.metrics));
        }
    }
    compare_or_bless("four_cpu.snap", &lines);
}

/// Guards the dynamic-steering path: the multi-queue Flow Director
/// configuration (4 CPUs, one 4-queue NIC, 12 hash-placed flows with the
/// filter table chasing consumers) alongside the static `four_cpu` cells.
/// The snapshot covers the metrics *and* the steering counters, so
/// re-steer accounting can't drift silently either.
#[test]
fn flow_director_matches_committed_golden_snapshot() {
    let mut lines = Vec::new();
    for dir in [Direction::Tx, Direction::Rx] {
        let mut config =
            ExperimentConfig::steer_sweep(dir, 4, 12, SteerSpec::flow_director()).with_seed(0x5EED);
        config.workload.warmup_messages = 2;
        config.workload.measure_messages = 6;
        let label = format!("{dir} 4cpu 12flows FlowDir");
        let run = run_experiment(&config).unwrap();
        lines.push(format!("{label}: {:?} {:?}", run.metrics, run.steer));
    }
    compare_or_bless("flow_director.snap", &lines);
}

/// Guards the kernel-bypass poll-mode dataplane: 4 busy-polling PMD
/// cores over one 4-queue NIC, 12 RSS-hashed flows, both directions.
/// The snapshot covers the metrics *and* the poll counters (polls,
/// empty polls, spin vs work cycles), so neither the run-to-completion
/// loop nor the idle-burn accounting can drift silently.
#[test]
fn poll_mode_matches_committed_golden_snapshot() {
    let mut lines = Vec::new();
    for dir in [Direction::Tx, Direction::Rx] {
        let mut config = ExperimentConfig::poll_sweep(dir, 4, 12).with_seed(0x5EED);
        config.workload.warmup_messages = 2;
        config.workload.measure_messages = 6;
        let label = format!("{dir} 4cpu 12flows Poll");
        let run = run_experiment(&config).unwrap();
        assert_eq!(
            run.metrics.interrupts, 0,
            "poll mode must take no interrupts"
        );
        lines.push(format!("{label}: {:?} {:?}", run.metrics, run.poll));
    }
    compare_or_bless("poll_mode.snap", &lines);
}

/// Guards the dynamic-flow lifecycle path: quick churn cells (4 CPUs,
/// 24 connection slots, Flow Director steering) on both dataplanes.
/// The snapshot covers the metrics *and* the lifecycle counters
/// (accepts, completes, drops, FCT percentiles, drain state), so
/// SYN-to-FIN state-machine or arena-recycling changes can't drift
/// silently. Drain invariants are asserted outright: a finished churn
/// run leaves no live flow slots and no steering-table entries behind.
#[test]
fn churn_matches_committed_golden_snapshot() {
    let mut lines = Vec::new();
    for plane in [DataplaneMode::Interrupt, DataplaneMode::Poll] {
        let config = ExperimentConfig::churn(4, 24, SteerSpec::flow_director(), plane)
            .quick()
            .with_seed(0x5EED);
        let label = format!("{plane:?} 4cpu 24slots FlowDir churn");
        let run = run_experiment(&config).unwrap();
        assert!(run.lifecycle.accepts > 0, "churn cell accepted nothing");
        assert!(run.lifecycle.completes > 0, "churn cell completed nothing");
        assert_eq!(run.lifecycle.final_live_flows, 0, "flow slots leaked");
        assert_eq!(
            run.lifecycle.final_table_entries, 0,
            "steering-table entries leaked"
        );
        lines.push(format!("{label}: {:?} {:?}", run.metrics, run.lifecycle));
    }
    compare_or_bless("churn.snap", &lines);
}

/// Guards the interned-name rendering on the report path: per-flow
/// region names are stored as compact `RegionName::Indexed` values since
/// the bulk slab provisioning landed, and the report section that shows
/// them must resolve each one to exactly the eager `format!` string the
/// pre-interning code built. The snapshot renders the memory map of a
/// small flow slab built both ways — byte-identical sections, pinned.
#[test]
fn region_names_match_committed_golden_snapshot() {
    use sim_mem::{MemoryConfig, MemorySystem, RegionName, RegionPlan};

    let fields: [(&str, u64); 6] = [
        ("tcp_ctx", 1344),
        ("sock", 1472),
        ("skb_meta", 4096),
        ("skb_data", 16384),
        ("tx_app_buf", 4096),
        ("rx_app_buf", 4096),
    ];
    // The bulk path: one plan, interned names, single slab carve-out.
    let mut bulk = MemorySystem::new(MemoryConfig::paper_sut(2));
    let mut plan = RegionPlan::with_capacity(fields.len() * 4);
    for flow in 0..4u32 {
        for &(suffix, size) in &fields {
            plan.add(RegionName::indexed("conn", flow, suffix), size);
        }
    }
    bulk.add_regions_bulk(plan);
    // The incremental path: one add_region per region, eager strings.
    let mut incremental = MemorySystem::new(MemoryConfig::paper_sut(2));
    for flow in 0..4u32 {
        for &(suffix, size) in &fields {
            incremental.add_region(format!("conn{flow}.{suffix}"), size);
        }
    }
    let rendered = sim_prof::region_map_report(bulk.regions(), usize::MAX);
    assert_eq!(
        rendered,
        sim_prof::region_map_report(incremental.regions(), usize::MAX),
        "interned names must render byte-identically to the eager strings"
    );
    let lines: Vec<String> = rendered.lines().map(str::to_string).collect();
    compare_or_bless("region_names.snap", &lines);
}

#[test]
fn identical_configs_give_identical_results() {
    let config = ExperimentConfig::paper_sut(Direction::Rx, 4096, AffinityMode::Irq).quick();
    let a = run_experiment(&config).unwrap();
    let b = run_experiment(&config).unwrap();
    assert_eq!(a.metrics, b.metrics);
    // The full profile matrix matches too, function by function, CPU by CPU.
    for (id, _) in a.registry.iter() {
        for c in 0..config.cpus {
            let cpu = sim_core::CpuId::new(c as u32);
            assert_eq!(
                a.profiler.counters(cpu, id),
                b.profiler.counters(cpu, id),
                "profile mismatch for {} on cpu{c}",
                a.registry.name(id)
            );
        }
    }
}

#[test]
fn seed_changes_timing_but_not_accounting_identities() {
    let base = ExperimentConfig::paper_sut(Direction::Tx, 4096, AffinityMode::None).quick();
    for seed in [1, 2, 3] {
        let r = run_experiment(&base.clone().with_seed(seed)).unwrap();
        let m = &r.metrics;
        // Identities that must hold for any seed:
        assert_eq!(m.messages, u64::from(base.workload.measure_messages) * 8);
        assert_eq!(m.bytes_moved, m.messages * base.workload.message_bytes);
        // Profiler totals and bin totals agree.
        let bin_sum: u64 = sim_tcp::Bin::ALL.iter().map(|&b| m.bin(b).cycles).sum();
        assert_eq!(bin_sum, m.total.cycles, "bins must partition all cycles");
        // Busy cycles can't exceed per-CPU wall time by more than slack
        // (events processed after the last measured message).
        for c in 0..base.cpus {
            assert!(m.busy_cycles[c] > 0, "cpu{c} did no work?");
        }
    }
}

#[test]
fn modes_actually_differ() {
    let make = |mode| {
        let mut c = ExperimentConfig::paper_sut(Direction::Rx, 16384, mode);
        c.workload.warmup_messages = 4;
        c.workload.measure_messages = 10;
        run_experiment(&c).unwrap().metrics
    };
    let no = make(AffinityMode::None);
    let full = make(AffinityMode::Full);
    assert_ne!(
        no.wall_cycles, full.wall_cycles,
        "modes should not be identical"
    );
    assert_ne!(no.total.machine_clears, full.total.machine_clears);
}

#[test]
fn four_p_and_two_p_both_deterministic() {
    for cpus in [2usize, 4] {
        let mut config = if cpus == 2 {
            ExperimentConfig::paper_sut(Direction::Tx, 1024, AffinityMode::Full)
        } else {
            ExperimentConfig::four_processor(Direction::Tx, 1024, AffinityMode::Full)
        }
        .quick();
        config.seed = 77;
        let a = run_experiment(&config).unwrap().metrics;
        let b = run_experiment(&config).unwrap().metrics;
        assert_eq!(a, b, "{cpus}P run not deterministic");
    }
}
