//! End-to-end analysis pipeline: real runs through the Amdahl
//! decomposition, impact indicators, Spearman correlation and every
//! table/figure renderer.

use affinity_repro::analysis::{
    bin_improvements, impact_indicators, overall_improvement, spearman,
};
use affinity_repro::{
    report, run_experiment, AffinityMode, Direction, ExperimentConfig, RunResult,
};
use sim_cpu::{EventCosts, HwEvent};
use sim_tcp::Bin;

fn pair(direction: Direction, size: u64) -> (RunResult, RunResult) {
    let make = |mode| {
        let mut c = ExperimentConfig::paper_sut(direction, size, mode);
        c.workload.warmup_messages = 6;
        c.workload.measure_messages = 14;
        run_experiment(&c).unwrap()
    };
    (make(AffinityMode::None), make(AffinityMode::Full))
}

#[test]
fn amdahl_decomposition_is_consistent_on_real_runs() {
    let (no, full) = pair(Direction::Tx, 16384);
    let rows = bin_improvements(&no.metrics, &full.metrics);
    assert_eq!(rows.len(), 7);
    // The per-bin contributions must sum to the direct overall number.
    let overall = overall_improvement(&rows, HwEvent::Cycles);
    let no_per_byte = no.metrics.total.cycles as f64 / no.metrics.bytes_moved as f64;
    let full_per_byte = full.metrics.total.cycles as f64 / full.metrics.bytes_moved as f64;
    let direct = 1.0 - full_per_byte / no_per_byte;
    assert!(
        (overall - direct).abs() < 1e-6,
        "decomposed {overall:.4} vs direct {direct:.4}"
    );
    // Baseline shares sum to 1.
    let share_sum: f64 = rows.iter().map(|r| r.pct_time_base).sum();
    assert!((share_sum - 1.0).abs() < 1e-9);
}

#[test]
fn impact_indicators_rank_clears_and_llc_first() {
    // Figure 5's finding: machine clears and LLC misses are the two
    // dominant indicator events.
    let (no, _) = pair(Direction::Rx, 65536);
    let rows = impact_indicators(&no.metrics.total, &EventCosts::paper());
    let mut ranked: Vec<_> = rows
        .iter()
        .filter(|r| r.event != HwEvent::Instructions)
        .collect();
    ranked.sort_by(|a, b| b.share.partial_cmp(&a.share).unwrap());
    let top2: Vec<HwEvent> = ranked[..2].iter().map(|r| r.event).collect();
    assert!(top2.contains(&HwEvent::MachineClear), "top2 {top2:?}");
    assert!(top2.contains(&HwEvent::LlcMiss), "top2 {top2:?}");
}

#[test]
fn spearman_on_real_improvements_is_in_range_and_mostly_positive() {
    let (no, full) = pair(Direction::Tx, 65536);
    let rows = bin_improvements(&no.metrics, &full.metrics);
    let cycles: Vec<f64> = rows.iter().map(|r| r.cycles_improvement).collect();
    let clears: Vec<f64> = rows.iter().map(|r| r.clears_improvement).collect();
    let rho = spearman(&cycles, &clears);
    assert!((-1.0..=1.0).contains(&rho));
    assert!(
        rho > 0.0,
        "cycle and clear improvements should correlate positively, got {rho:.2}"
    );
}

#[test]
fn every_renderer_produces_its_artifact() {
    let (no, full) = pair(Direction::Tx, 4096);
    let rows = vec![(
        4096u64,
        vec![
            (AffinityMode::None, no.metrics.clone()),
            (AffinityMode::Full, full.metrics.clone()),
        ],
    )];

    let fig3 = report::render_figure3("TX", &rows);
    assert!(fig3.contains("Bandwidth"));
    let fig4 = report::render_figure4("TX", &rows);
    assert!(fig4.contains("GHz/Gbps"));
    let t1 = report::render_table1_panel("TX 4KB", &no.metrics, &full.metrics);
    for bin in Bin::ALL {
        assert!(t1.contains(bin.label()));
    }
    let t2 = report::render_table2(&no.metrics, &full.metrics);
    assert!(t2.contains("contended"));
    let f5 = report::render_figure5_panel("TX 4KB", &no.metrics, &EventCosts::paper());
    assert!(f5.contains("Machine clear") && f5.contains("%time"));
    let t3 = report::render_table3_panel("TX 4KB", &no.metrics, &full.metrics);
    assert!(t3.contains("d-clears"));
    let t4 = report::render_table4("TX 4KB", &no, 5);
    assert!(t4.contains("CPU 0") && t4.contains("CPU 1"));
    let t5 = report::render_table5(&[("TX 4KB".into(), no.metrics.clone(), full.metrics.clone())]);
    assert!(t5.contains("critical value"));
}

#[test]
fn table4_top_clear_functions_are_plausible_symbols() {
    // Under no affinity the top machine-clear symbols should be TCP
    // engine functions and IRQ handlers — the paper's Table 4 cast.
    let mut c = ExperimentConfig::paper_sut(Direction::Tx, 128, AffinityMode::None);
    c.workload.warmup_messages = 30;
    c.workload.measure_messages = 120;
    let run = run_experiment(&c).unwrap();
    let rendered = report::render_table4("TX 128B no affinity", &run, 10);
    let has_irq = rendered.contains("IRQ0x");
    let has_engine = rendered.contains("tcp_");
    assert!(
        has_irq && has_engine,
        "expected IRQ handlers and tcp_* functions among top clear symbols:\n{rendered}"
    );
}
