//! Cross-crate substrate integration: the cache model, CPU model, OS
//! model and stack interact the way the machine depends on.

use affinity_repro::substrate::{sim_core, sim_cpu, sim_mem, sim_net, sim_os, sim_prof, sim_tcp};
use sim_core::{ConnectionId, CpuId, IrqVector, SimRng};
use sim_cpu::{ClearReason, Core, CpuConfig};
use sim_mem::{MemoryConfig, MemorySystem};
use sim_net::{Nic, NicConfig};
use sim_prof::Profiler;
use sim_tcp::{ExecCtx, StackConfig, TcpStack};

struct Rig {
    mem: MemorySystem,
    cores: Vec<Core>,
    prof: Profiler,
    rng: SimRng,
    stack: TcpStack,
    nic: Nic,
}

fn rig() -> Rig {
    let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
    let nic = Nic::new(
        sim_core::DeviceId::new(0),
        &[IrqVector::new(0x19)],
        NicConfig::default(),
        &mut mem,
    );
    let stack = TcpStack::new(
        StackConfig::paper(),
        &mut mem,
        &[nic.rx_buffers(0)],
        &[IrqVector::new(0x19)],
        65536,
    )
    .unwrap();
    Rig {
        cores: vec![
            Core::new(CpuId::new(0), CpuConfig::paper_sut()),
            Core::new(CpuId::new(1), CpuConfig::paper_sut()),
        ],
        prof: Profiler::new(2),
        rng: SimRng::new(9),
        mem,
        stack,
        nic,
    }
}

const CONN: ConnectionId = ConnectionId::new(0);

#[test]
fn cross_cpu_stack_execution_costs_more_than_colocated() {
    // The core mechanism of the whole paper, at substrate level: running
    // the ACK path on a different CPU than the send path costs extra
    // cycles through coherence misses.
    let measure = |cross: bool| {
        let mut r = rig();
        let ack_cpu = usize::from(cross);
        let mut total = 0u64;
        for round in 0..40 {
            {
                let mut ctx = ExecCtx::new(&mut r.cores[0], &mut r.mem, &mut r.prof, &mut r.rng);
                r.stack.sendmsg(&mut ctx, CONN, 8192, cross);
            }
            {
                let mut ctx =
                    ExecCtx::new(&mut r.cores[ack_cpu], &mut r.mem, &mut r.prof, &mut r.rng);
                r.stack.rx_ack(&mut ctx, CONN, 6, cross);
                r.stack.tx_complete(&mut ctx, CONN, r.nic.tx_ring(0), 6);
            }
            if round >= 10 {
                // skip warm-up
                total = r.cores.iter().map(Core::busy_cycles).sum();
            }
        }
        total
    };
    let colocated = measure(false);
    let split = measure(true);
    assert!(
        split > colocated + colocated / 50,
        "split {split} should cost measurably more than colocated {colocated}"
    );
}

#[test]
fn dma_then_copy_misses_propagate_through_stack() {
    let mut r = rig();
    let rx_ring = r.nic.rx_ring(0);
    // Frames DMA in, bottom half queues them, recvmsg copies them out.
    for _ in 0..4 {
        r.nic.dma_rx_frame(0, &mut r.mem, 1448, 0);
    }
    {
        let mut ctx = ExecCtx::new(&mut r.cores[0], &mut r.mem, &mut r.prof, &mut r.rng);
        r.stack
            .rx_bottom_half(&mut ctx, CONN, &[1448; 4], rx_ring, false);
        r.stack.recvmsg(&mut ctx, CONN, 65536, false);
    }
    let copies = r
        .prof
        .func_total(r.stack.registry().lookup("__copy_to_user").unwrap());
    assert!(
        copies.llc_misses >= 4 * 20,
        "each DMA'd frame (~23 lines) must miss on copy: {copies:?}"
    );
}

#[test]
fn machine_clears_show_up_in_core_and_profiler_consistently() {
    let mut r = rig();
    let before = r.cores[0].counters().machine_clears;
    let penalty = r.cores[0].machine_clear(ClearReason::DeviceInterrupt);
    assert_eq!(penalty, 500);
    assert_eq!(r.cores[0].counters().machine_clears, before + 1);
    assert_eq!(r.cores[0].clears_for(ClearReason::DeviceInterrupt), 1);
    assert_eq!(r.cores[0].clears_for(ClearReason::Ipi), 0);
}

#[test]
fn scheduler_and_ioapic_compose_for_the_four_modes() {
    use sim_os::{CpuMask, IoApic, Scheduler, SchedulerConfig};
    // The paper's full-affinity wiring: tasks pinned to their NIC's CPU.
    let mut apic = IoApic::new(2);
    let mut sched = Scheduler::new(SchedulerConfig::new(2));
    let vectors: Vec<IrqVector> = (0..8).map(|i| IrqVector::new(0x19 + i)).collect();
    for (i, &v) in vectors.iter().enumerate() {
        let cpu = CpuId::new(u32::from(i >= 4));
        apic.set_affinity(v, CpuMask::single(cpu)).unwrap();
        let task = sched
            .spawn(format!("ttcp{i}"), CpuMask::single(cpu))
            .unwrap();
        let placement = sched.wake(task, apic.route(v), true).unwrap();
        assert_eq!(placement.cpu, cpu, "task follows its interrupt");
        assert!(!placement.needs_resched_ipi);
    }
    assert_eq!(sched.load(CpuId::new(0)), 4);
    assert_eq!(sched.load(CpuId::new(1)), 4);
}

#[test]
fn profiler_totals_match_core_counters_for_stack_work() {
    let mut r = rig();
    {
        let mut ctx = ExecCtx::new(&mut r.cores[0], &mut r.mem, &mut r.prof, &mut r.rng);
        r.stack.sendmsg(&mut ctx, CONN, 16384, false);
    }
    // Every cycle the core spent is attributed to some function.
    assert_eq!(
        r.prof.cpu_total(CpuId::new(0)).cycles,
        r.cores[0].counters().cycles
    );
    assert_eq!(
        r.prof.cpu_total(CpuId::new(0)).instructions,
        r.cores[0].counters().instructions
    );
}
