//! Property tests for the run loop's cached ready-CPU index.
//!
//! `ready.rs` claims its generation-keyed bitmask plus strict-`<`
//! ascending-bit scan reproduces the naive
//! `(0..cpus).filter(cpu_has_work).min_by_key(|c| (clock, cpu))` pick
//! exactly. These tests drive a real [`Scheduler`] through randomized
//! wake/block/steal/advance sequences while maintaining the cache the
//! same way the machine's run loop does — rebuilding **only** when the
//! scheduler generation slips — and check the cached pick against a
//! freshly computed naive scan at every step. A scheduler mutation that
//! forgot to bump the generation, or a pick that broke the `(clock, cpu)`
//! tie-break, fails here.

use affinity_repro::substrate::{sim_core, sim_os};
use affinity_repro::ReadyCpus;
use proptest::prelude::*;
use sim_core::CpuId;
use sim_os::{CpuMask, Scheduler, SchedulerConfig};

/// The run loop's runnability predicate (see `Machine::cpu_has_work`):
/// a CPU has work when something is running on it, queued for it, or
/// stealable into it while it idles.
fn cpu_has_work(s: &Scheduler, c: usize) -> bool {
    let cpu = CpuId::new(c as u32);
    s.current(cpu).is_some()
        || s.load(cpu) > 0
        || (s.current(cpu).is_none() && s.can_steal_into(cpu))
}

/// The naive pick the cache must reproduce bit-for-bit.
fn naive_pick(s: &Scheduler, clocks: &[u64]) -> Option<usize> {
    (0..clocks.len())
        .filter(|&c| cpu_has_work(s, c))
        .min_by_key(|&c| (clocks[c], c))
}

/// Rebuilds the cache iff the generation slipped — exactly the run
/// loop's refresh discipline.
fn refresh(ready: &mut ReadyCpus, s: &Scheduler, cpus: usize) {
    let generation = s.generation();
    if ready.stale(generation) {
        let mut mask = 0u64;
        for c in 0..cpus {
            if cpu_has_work(s, c) {
                mask |= 1 << c;
            }
        }
        ready.set(generation, mask);
    }
}

proptest! {
    /// The cached pick equals the naive scan across randomized
    /// block/wake/steal/clock-advance sequences on 1..=8 CPUs.
    #[test]
    fn cached_pick_matches_naive_scan(
        cpus in 1usize..9,
        masks in prop::collection::vec(1u64..256, 1..10),
        ops in prop::collection::vec((0usize..4, 0usize..64, 1u64..500), 0..300),
    ) {
        let mut s = Scheduler::new(SchedulerConfig::new(cpus));
        let tasks: Vec<_> = masks
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                // Clip the affinity mask to the machine and keep it
                // non-empty so the spawn is always valid.
                let m = (m & ((1u64 << cpus) - 1)).max(1);
                s.spawn(format!("t{i}"), CpuMask::from_bits(m)).unwrap()
            })
            .collect();
        let mut clocks = vec![0u64; cpus];
        let mut ready = ReadyCpus::new();
        for (op, sel, delta) in ops {
            refresh(&mut ready, &s, cpus);
            prop_assert_eq!(
                ready.pick(&clocks),
                naive_pick(&s, &clocks),
                "cached pick diverged before op {} (generation {})",
                op,
                s.generation()
            );
            let cpu = CpuId::new((sel % cpus) as u32);
            match op {
                // Wake (possibly re-wake) a task; placement policy and
                // the wake_affine flag both exercised.
                0 => {
                    let task = tasks[sel % tasks.len()];
                    let _ = s.wake(task, cpu, delta % 2 == 0);
                }
                // Run whatever is next on this CPU, then block it.
                1 => {
                    if s.current(cpu).is_none() {
                        s.pick_next(cpu);
                    }
                    let _ = s.block_current(cpu);
                }
                // Advance the CPU's local clock: no scheduler mutation,
                // no generation bump — the cache must stay valid while
                // the pick tracks the new clocks.
                2 => clocks[sel % cpus] += delta,
                // An idle CPU pulls work across runqueues.
                _ => {
                    if s.current(cpu).is_none() {
                        let _ = s.steal_into(cpu);
                    }
                }
            }
        }
        refresh(&mut ready, &s, cpus);
        prop_assert_eq!(ready.pick(&clocks), naive_pick(&s, &clocks));
    }

    /// Clock advances alone never invalidate the cache, yet the pick
    /// still follows the `(clock, cpu)` lexicographic minimum.
    #[test]
    fn clock_advances_reuse_the_cached_mask(
        advances in prop::collection::vec((0usize..4, 1u64..100), 1..50),
    ) {
        let cpus = 4;
        let mut s = Scheduler::new(SchedulerConfig::new(cpus));
        for i in 0..cpus {
            let t = s.spawn(format!("t{i}"), CpuMask::single(CpuId::new(i as u32))).unwrap();
            s.wake(t, CpuId::new(0), false).unwrap();
        }
        let mut clocks = vec![0u64; cpus];
        let mut ready = ReadyCpus::new();
        refresh(&mut ready, &s, cpus);
        let generation = s.generation();
        for (c, delta) in advances {
            clocks[c] += delta;
            prop_assert!(!ready.stale(generation), "clock advance must not stale the cache");
            prop_assert_eq!(ready.pick(&clocks), naive_pick(&s, &clocks));
        }
    }
}
