//! Property tests for the steering & interrupt-delivery subsystem:
//! every policy keeps deliveries on online CPUs inside the programmed
//! affinity masks, placement is independent of the sweep harness's
//! thread count, and the `AffinityMode` presets reproduce the exact
//! flow→CPU maps the pre-refactor dispatch produced.

use affinity_repro::{
    run_experiment, AffinityMode, Direction, DynamicSteer, ExperimentConfig, FlowPlacement,
    Machine, SteerSpec, VectorLayout,
};
use proptest::prelude::*;
use sim_core::CpuId;
use sim_os::{CpuMask, IoApic};
use sim_prof::SteerCounters;

/// Every point of the placement × layout × dynamic space.
fn all_specs() -> Vec<SteerSpec> {
    let mut specs = Vec::new();
    for placement in [FlowPlacement::RoundRobin, FlowPlacement::RssHash] {
        for vectors in [VectorLayout::AllCpu0, VectorLayout::SplitEven] {
            for dynamic in [
                DynamicSteer::Off,
                DynamicSteer::FlowDirector {
                    table_entries: 16,
                    resteer_cycles: 600,
                },
            ] {
                specs.push(SteerSpec {
                    placement,
                    vectors,
                    dynamic,
                    pin_processes: false,
                });
            }
        }
    }
    specs
}

proptest! {
    /// For any machine shape, every policy places each flow on a real
    /// queue, homes each vector on an online CPU, and — after arbitrary
    /// consumer activity — only ever re-targets a delivery to an online
    /// CPU that stays inside the vector's programmed affinity mask.
    #[test]
    fn policies_deliver_to_online_cpus_in_the_affinity_mask(
        cpus in 1usize..17,
        queues in 1usize..33,
        flows in 1usize..65,
        runs in prop::collection::vec((0usize..64, 0usize..16), 0..40),
    ) {
        for spec in all_specs() {
            let mut policy = spec.build();
            let mut counters = SteerCounters::default();
            let mut apic = IoApic::new(cpus);
            // Program the static layout the machine would install; one
            // vector per queue (vector number = 0x20 + queue).
            let vector = |q: usize| sim_core::IrqVector::new(0x20 + q as u32);
            for q in 0..queues {
                let home = policy.vector_home(q, queues, cpus);
                prop_assert!((home.index()) < cpus, "{}: queue {q} homed off-line", policy.name());
                apic.set_affinity(vector(q), CpuMask::single(home)).unwrap();
            }
            // Arbitrary consumer activity on online CPUs.
            for &(flow, cpu) in &runs {
                policy.consumer_ran(flow % flows, CpuId::new((cpu % cpus) as u32), &mut counters);
            }
            for flow in 0..flows {
                let q = policy.place_flow(flow, queues);
                prop_assert!(q < queues, "{}: flow {flow} placed off-queue", policy.name());
                if let Some(decision) = policy.steer(flow, &mut counters) {
                    prop_assert!(policy.dynamic(), "static policy returned a steer decision");
                    prop_assert!(
                        decision.target.index() < cpus,
                        "{}: steered flow {flow} to offline cpu {:?}",
                        policy.name(),
                        decision.target
                    );
                    apic.retarget(vector(q), decision.target).unwrap();
                }
                // Wherever the vector ended up, its route is inside its
                // own affinity mask and online.
                let route = apic.route(vector(q));
                prop_assert!(apic.affinity(vector(q)).contains(route));
                prop_assert!(route.index() < cpus);
            }
        }
    }

    /// Flow Director filter install/teardown under arbitrary
    /// accept/close interleavings stays in lockstep with a set-based
    /// model: occupancy always equals the live-install count, capacity
    /// rejects never install, a rejected flow keeps its static route,
    /// and closing everything returns the table to exactly zero.
    #[test]
    fn flow_director_lifecycle_matches_a_set_model(
        capacity in 1usize..9,
        cpus in 1usize..9,
        ops in prop::collection::vec((0usize..24, 0usize..8, any::<bool>()), 1..80),
    ) {
        let spec = SteerSpec {
            placement: FlowPlacement::RssHash,
            vectors: VectorLayout::SplitEven,
            dynamic: DynamicSteer::FlowDirector {
                table_entries: capacity,
                resteer_cycles: 600,
            },
            pin_processes: false,
        };
        let mut policy = spec.build();
        let mut counters = SteerCounters::default();
        // The model: flow → last programmed CPU, bounded by capacity.
        let mut model: std::collections::BTreeMap<usize, u32> = std::collections::BTreeMap::new();
        let mut rejects = 0u64;
        for &(flow, cpu, open) in &ops {
            let cpu_id = CpuId::new((cpu % cpus) as u32);
            if open {
                policy.flow_opened(flow, cpu_id, &mut counters);
                if model.contains_key(&flow) || model.len() < capacity {
                    model.insert(flow, cpu_id.raw());
                } else {
                    rejects += 1;
                }
            } else {
                policy.flow_closed(flow, &mut counters);
                model.remove(&flow);
            }
            prop_assert_eq!(
                policy.occupancy(),
                Some((model.len(), capacity)),
                "occupancy diverged from the model after {:?}",
                (flow, cpu, open)
            );
            // The table steers installed flows to their programmed CPU
            // and leaves everything else on its static placement.
            match (policy.steer(flow, &mut counters), model.get(&flow)) {
                (Some(d), Some(&want)) => prop_assert_eq!(d.target.raw(), want),
                (None, None) => {}
                (got, want) => prop_assert!(
                    false,
                    "steer/model mismatch for flow {flow}: {got:?} vs {want:?}"
                ),
            }
        }
        prop_assert_eq!(counters.table_rejects, rejects, "reject accounting diverged");
        // Drain: closing every flow ever touched empties the table.
        for &(flow, _, _) in &ops {
            policy.flow_closed(flow, &mut counters);
        }
        prop_assert_eq!(policy.occupancy(), Some((0, capacity)), "table did not drain to zero");
        for &(flow, _, _) in &ops {
            prop_assert!(policy.steer(flow, &mut counters).is_none(), "stale filter survived drain");
        }
    }

    /// RSS placement is a pure function of the flow id and queue count:
    /// the worker-pool width (`REPRO_THREADS`) cannot leak into it.
    #[test]
    fn rss_placement_is_independent_of_worker_threads(flows in 1usize..65, queues in 1usize..33) {
        let reference: Vec<usize> = (0..flows)
            .map(|f| FlowPlacement::RssHash.place(f, queues))
            .collect();
        let workers: Vec<std::thread::JoinHandle<Vec<usize>>> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    // Each worker walks the flows starting at a different
                    // offset, like the deterministic pool's work-stealing
                    // does; the map it reconstructs must not care.
                    let mut got = vec![0usize; flows];
                    for k in 0..flows {
                        let f = (k + i) % flows;
                        got[f] = FlowPlacement::RssHash.place(f, queues);
                    }
                    got
                })
            })
            .collect();
        for handle in workers {
            prop_assert_eq!(&handle.join().unwrap(), &reference);
        }
    }
}

/// A full RSS run gives bit-identical placements and metrics no matter
/// what `REPRO_THREADS` is set to (the env knob only widens the bench
/// harness's pool; the simulation itself must not observe it).
#[test]
fn rss_runs_are_identical_under_any_repro_threads() {
    let run_at = |threads: &str| {
        std::env::set_var("REPRO_THREADS", threads);
        let config =
            ExperimentConfig::steer_sweep(Direction::Rx, 4, 12, SteerSpec::flow_director());
        let machine = Machine::new(&config).unwrap();
        let placements = machine.flow_queues().to_vec();
        let metrics = run_experiment(&config).unwrap().metrics;
        (placements, metrics)
    };
    let (p1, m1) = run_at("1");
    let (p8, m8) = run_at("8");
    std::env::remove_var("REPRO_THREADS");
    assert_eq!(p1, p8, "flow placement saw REPRO_THREADS");
    assert_eq!(m1, m8, "run results saw REPRO_THREADS");
}

/// The `AffinityMode` presets reproduce the exact flow→queue→CPU maps
/// the pre-refactor `match mode` dispatch wired on the paper SUT: one
/// single-queue NIC per connection (8 queues over 2 CPUs), round-robin
/// flows, vectors all on CPU0 (None/Process) or split 0–3/4–7
/// (Irq/Full), and hash placement with split vectors under Rss.
#[test]
fn affinity_mode_presets_reproduce_pre_refactor_maps() {
    let cpus = 2;
    let queues = 8;
    for mode in AffinityMode::ALL {
        let spec = mode.steer_preset();
        let policy = spec.build();
        for flow in 0..queues {
            let expect_queue = match mode {
                AffinityMode::Rss => {
                    ((flow as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % queues
                }
                _ => flow % queues,
            };
            assert_eq!(
                policy.place_flow(flow, queues),
                expect_queue,
                "{mode:?}: flow {flow} placement moved"
            );
            let q = expect_queue;
            let expect_cpu = match mode {
                AffinityMode::None | AffinityMode::Process => CpuId::new(0),
                _ => CpuId::new((q * cpus / queues) as u32),
            };
            assert_eq!(
                policy.vector_home(q, queues, cpus),
                expect_cpu,
                "{mode:?}: queue {q} vector home moved"
            );
        }
        assert!(!policy.dynamic(), "presets never re-target dynamically");
        assert_eq!(spec.pin_processes, mode.processes_pinned());
    }

    // And the built machine wires exactly those placements.
    for mode in AffinityMode::ALL {
        let config = ExperimentConfig::paper_sut(Direction::Rx, 4096, mode);
        let machine = Machine::new(&config).unwrap();
        let spec = mode.steer_preset();
        let policy = spec.build();
        let expected: Vec<usize> = (0..config.connections)
            .map(|f| policy.place_flow(f, queues))
            .collect();
        assert_eq!(machine.flow_queues(), &expected[..], "{mode:?}");
    }
}
