//! Integration tests asserting the paper's headline claims hold on the
//! simulated substrate (weak/shape assertions — exact magnitudes are
//! recorded in EXPERIMENTS.md from release-mode runs).

use affinity_repro::{
    run_experiment, AffinityMode, Direction, ExperimentConfig, RunMetrics, SteerSpec,
};
use sim_tcp::Bin;

fn run(direction: Direction, size: u64, mode: AffinityMode) -> RunMetrics {
    let mut config = ExperimentConfig::paper_sut(direction, size, mode);
    config.workload.warmup_messages = 6;
    config.workload.measure_messages = 16;
    run_experiment(&config).expect("valid config").metrics
}

#[test]
fn full_affinity_beats_no_affinity_on_throughput_tx() {
    let no = run(Direction::Tx, 65536, AffinityMode::None);
    let full = run(Direction::Tx, 65536, AffinityMode::Full);
    assert!(
        full.throughput_mbps() > no.throughput_mbps() * 1.10,
        "full {:.0} vs no {:.0}",
        full.throughput_mbps(),
        no.throughput_mbps()
    );
}

#[test]
fn full_affinity_beats_no_affinity_on_throughput_rx() {
    let no = run(Direction::Rx, 65536, AffinityMode::None);
    let full = run(Direction::Rx, 65536, AffinityMode::Full);
    assert!(
        full.throughput_mbps() > no.throughput_mbps() * 1.10,
        "full {:.0} vs no {:.0}",
        full.throughput_mbps(),
        no.throughput_mbps()
    );
}

#[test]
fn process_affinity_alone_has_little_impact() {
    // "process affinity alone has little impact on throughput."
    let no = run(Direction::Tx, 65536, AffinityMode::None);
    let proc = run(Direction::Tx, 65536, AffinityMode::Process);
    let full = run(Direction::Tx, 65536, AffinityMode::Full);
    let proc_gain = proc.throughput_mbps() / no.throughput_mbps() - 1.0;
    let full_gain = full.throughput_mbps() / no.throughput_mbps() - 1.0;
    assert!(
        proc_gain < full_gain / 2.0,
        "proc gain {proc_gain:.2} should be well below full gain {full_gain:.2}"
    );
}

#[test]
fn machine_clears_drop_under_full_affinity() {
    // The paper's novel claim: affinity reduces machine clears (IPIs
    // disappear; device-interrupt clears persist).
    for direction in [Direction::Tx, Direction::Rx] {
        let no = run(direction, 65536, AffinityMode::None);
        let full = run(direction, 65536, AffinityMode::Full);
        let per_msg_no = no.total.machine_clears as f64 / no.messages as f64;
        let per_msg_full = full.total.machine_clears as f64 / full.messages as f64;
        assert!(
            per_msg_full < per_msg_no * 0.9,
            "{direction}: clears/msg {per_msg_no:.0} -> {per_msg_full:.0}"
        );
    }
}

#[test]
fn full_affinity_eliminates_resched_ipis() {
    let full = run(Direction::Rx, 65536, AffinityMode::Full);
    assert_eq!(
        full.resched_ipis, 0,
        "pinned colocated tasks never need IPIs"
    );
    let no = run(Direction::Rx, 65536, AffinityMode::None);
    let _ = no; // no-affinity may or may not IPI in a short window
}

#[test]
fn lock_contention_vanishes_under_full_affinity() {
    let no = run(Direction::Rx, 65536, AffinityMode::None);
    let full = run(Direction::Rx, 65536, AffinityMode::Full);
    assert_eq!(full.lock_contended, 0, "same-CPU stack never contends");
    assert!(no.lock_acquisitions > 0);
    // Table 1's Locks anomaly: fewer branches under full affinity.
    assert!(
        full.bin(Bin::Locks).branches < no.bin(Bin::Locks).branches,
        "spin branches should collapse"
    );
}

#[test]
fn rx_is_more_memory_bound_than_tx() {
    // "TX generally has lower CPIs and MPIs than RX."
    let tx = run(Direction::Tx, 65536, AffinityMode::None);
    let rx = run(Direction::Rx, 65536, AffinityMode::None);
    assert!(
        rx.total.cpi() > tx.total.cpi(),
        "rx {} tx {}",
        rx.total.cpi(),
        tx.total.cpi()
    );
    assert!(rx.total.mpi() > tx.total.mpi());
}

#[test]
fn rx_copies_have_pathological_cpi() {
    // The rep-movl copy of uncached DMA data: "glaringly large CPI and
    // MPI seen in RX of 64KB".
    let rx = run(Direction::Rx, 65536, AffinityMode::None);
    let copies = rx.bin(Bin::Copies);
    let engine = rx.bin(Bin::Engine);
    assert!(
        copies.cpi() > 4.0 * engine.cpi(),
        "copies CPI {:.1} vs engine CPI {:.1}",
        copies.cpi(),
        engine.cpi()
    );
}

#[test]
fn small_messages_are_interface_bound() {
    // Table 1, 128B: the sockets interface dominates. Small messages
    // need a longer steady-state window than the shared helper's.
    let mut config = ExperimentConfig::paper_sut(Direction::Tx, 128, AffinityMode::Full);
    config.workload.warmup_messages = 60;
    config.workload.measure_messages = 200;
    let tx = run_experiment(&config).expect("valid config").metrics;
    let interface = tx.bin_cycle_share(Bin::Interface);
    let copies = tx.bin_cycle_share(Bin::Copies);
    assert!(
        interface > 0.25 && interface > copies * 2.0,
        "interface {interface:.2} copies {copies:.2}"
    );
}

#[test]
fn large_messages_are_data_bound() {
    // Table 1, 64KB: engine + buffer management + copies dominate.
    let tx = run(Direction::Tx, 65536, AffinityMode::None);
    let data_bins = tx.bin_cycle_share(Bin::Copies)
        + tx.bin_cycle_share(Bin::Engine)
        + tx.bin_cycle_share(Bin::BufMgmt);
    assert!(data_bins > 0.55, "data bins share {data_bins:.2}");
    assert!(tx.bin_cycle_share(Bin::Interface) < 0.25);
}

#[test]
fn cost_decreases_with_transfer_size() {
    // Figure 4: GHz/Gbps falls as messages grow.
    let small = run(Direction::Tx, 128, AffinityMode::Full);
    let medium = run(Direction::Tx, 4096, AffinityMode::Full);
    let large = run(Direction::Tx, 65536, AffinityMode::Full);
    assert!(small.cost_ghz_per_gbps() > medium.cost_ghz_per_gbps());
    assert!(medium.cost_ghz_per_gbps() > large.cost_ghz_per_gbps());
}

#[test]
fn clears_by_reason_match_paper_expectations() {
    // Memory-ordering and SMC clears are "near zero"; interrupts and
    // IPIs dominate.
    let no = run(Direction::Rx, 65536, AffinityMode::None);
    let [device, ipi, _fault, ordering, smc] = no.clears_by_reason;
    assert_eq!(ordering, 0);
    assert_eq!(smc, 0);
    assert!(device > 0);
    let full = run(Direction::Rx, 65536, AffinityMode::Full);
    assert!(
        full.clears_by_reason[1] < ipi.max(1),
        "full affinity should not increase IPI clears"
    );
}

#[test]
fn four_processor_runs_show_worse_cpu0_bottleneck() {
    // §5: on 4P systems, no-affinity is even more CPU0-bound.
    let mut config = ExperimentConfig::four_processor(Direction::Rx, 16384, AffinityMode::None);
    config.workload.warmup_messages = 4;
    config.workload.measure_messages = 8;
    let no = run_experiment(&config).unwrap().metrics;
    let others_avg: f64 = (1..4).map(|c| no.cpu_utilization(c)).sum::<f64>() / 3.0;
    assert!(
        no.cpu_utilization(0) > others_avg,
        "CPU0 {:.2} should exceed the others' average {:.2}",
        no.cpu_utilization(0),
        others_avg
    );
}

#[test]
fn loss_injection_triggers_reno_recovery_without_deadlock() {
    // Non-zero wire loss: Reno timeouts fire, frames are retransmitted,
    // and the run still completes with every byte delivered.
    let mut config = ExperimentConfig::paper_sut(Direction::Tx, 16384, AffinityMode::Full);
    config.workload.warmup_messages = 4;
    config.workload.measure_messages = 10;
    config.tunables.loss_rate = 0.02;
    let m = run_experiment(&config).unwrap().metrics;
    assert_eq!(m.messages, 80);
    assert_eq!(m.bytes_moved, 80 * 16384);

    // Lossy runs are slower than clean ones.
    let mut clean = config.clone();
    clean.tunables.loss_rate = 0.0;
    let c = run_experiment(&clean).unwrap().metrics;
    assert!(
        m.throughput_mbps() < c.throughput_mbps(),
        "loss {:.0} vs clean {:.0}",
        m.throughput_mbps(),
        c.throughput_mbps()
    );
}

#[test]
fn congestion_window_limits_early_inflight() {
    // With a tiny max cwnd the sender cannot fill the send buffer, so
    // throughput drops versus the default window.
    let mut narrow = ExperimentConfig::paper_sut(Direction::Tx, 65536, AffinityMode::Full);
    narrow.workload.warmup_messages = 4;
    narrow.workload.measure_messages = 8;
    narrow.stack.max_cwnd = 4;
    narrow.stack.initial_cwnd = 2;
    let n = run_experiment(&narrow).unwrap().metrics;

    let mut wide = narrow.clone();
    wide.stack.max_cwnd = 256;
    let w = run_experiment(&wide).unwrap().metrics;
    assert!(
        n.throughput_mbps() < w.throughput_mbps() * 0.8,
        "narrow {:.0} vs wide {:.0}",
        n.throughput_mbps(),
        w.throughput_mbps()
    );
}

#[test]
fn dynamic_steering_recovers_most_of_full_affinity_without_pinning() {
    // The paper's conclusion: Flow-Director-style adapters that steer
    // interrupts to the consumer's CPU should get affinity benefits
    // without static configuration.
    let mk = |steer: Option<SteerSpec>, mode: AffinityMode| {
        let mut c = ExperimentConfig::paper_sut(Direction::Rx, 16384, mode);
        c.workload.warmup_messages = 8;
        c.workload.measure_messages = 20;
        c.steer = steer;
        run_experiment(&c).unwrap().metrics
    };
    let no = mk(None, AffinityMode::None);
    let rss = mk(
        Some(SteerSpec::flow_director_unconfigured()),
        AffinityMode::None,
    );
    let full = mk(None, AffinityMode::Full);
    assert!(
        rss.throughput_mbps() > no.throughput_mbps() * 1.05,
        "rss {:.0} vs no {:.0}",
        rss.throughput_mbps(),
        no.throughput_mbps()
    );
    assert!(
        rss.throughput_mbps() > no.throughput_mbps()
            && rss.throughput_mbps() <= full.throughput_mbps() * 1.05,
        "rss {:.0} should approach full {:.0}",
        rss.throughput_mbps(),
        full.throughput_mbps()
    );
}

#[test]
fn irq_rotation_runs_and_spreads_interrupt_load() {
    // Linux 2.6's rotate-the-vector scheme: better than everything-on-
    // CPU0 for balance, but "cache inefficiencies are still unavoidable"
    // — it should not beat full affinity.
    let mut rot = ExperimentConfig::paper_sut(Direction::Rx, 16384, AffinityMode::None);
    rot.workload.warmup_messages = 8;
    rot.workload.measure_messages = 20;
    rot.tunables.irq_rotation_cycles = 3_000_000;
    let r = run_experiment(&rot).unwrap().metrics;

    let mut full = rot.clone();
    full.tunables.irq_rotation_cycles = 0;
    full.mode = AffinityMode::Full;
    let f = run_experiment(&full).unwrap().metrics;

    assert!(r.messages > 0);
    assert!(
        f.throughput_mbps() > r.throughput_mbps(),
        "full {:.0} must beat rotation {:.0}",
        f.throughput_mbps(),
        r.throughput_mbps()
    );
}
