//! The paper's future-work workload: file I/O over iSCSI/TCP.
//!
//! Section 8 reports "promising performance gains when running a file IO
//! benchmark over iSCSI/TCP". An iSCSI data path is, at the TCP layer,
//! exactly the fast path this simulator models: long-lived connections
//! moving large, fixed-size data PDUs (here 64 KB reads and writes =
//! RX and TX bulk transfers). This example runs both directions per
//! affinity mode and reports the storage-flavored metrics an iSCSI
//! initiator/target would care about: IOPS and per-I/O CPU cost.
//!
//! ```bash
//! cargo run --release --example iscsi_storage
//! ```

use affinity_repro::{run_experiment, AffinityMode, Direction, ExperimentConfig};

const IO_BYTES: u64 = 65536; // one iSCSI data PDU burst per I/O

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("iSCSI-style storage traffic: 64 KB I/Os over 8 TCP sessions\n");
    println!(
        "{:>10} | {:>14} | {:>14} | {:>16} | {:>16}",
        "mode", "read IOPS", "write IOPS", "cy/read (k)", "cy/write (k)"
    );

    let mut rows = Vec::new();
    for mode in AffinityMode::ALL {
        let mut per_dir = Vec::new();
        for direction in [Direction::Rx, Direction::Tx] {
            // Reads arrive at the initiator (RX); writes leave it (TX).
            let mut config = ExperimentConfig::paper_sut(direction, IO_BYTES, mode);
            config.workload.warmup_messages = 8;
            config.workload.measure_messages = 16;
            let m = run_experiment(&config)?.metrics;
            let seconds = m.wall_cycles as f64 / m.freq.hertz() as f64;
            let iops = m.messages as f64 / seconds;
            per_dir.push((iops, m.cycles_per_message() / 1e3));
        }
        rows.push((mode, per_dir));
    }

    for (mode, per_dir) in &rows {
        println!(
            "{:>10} | {:>14.0} | {:>14.0} | {:>16.0} | {:>16.0}",
            mode.label(),
            per_dir[0].0,
            per_dir[1].0,
            per_dir[0].1,
            per_dir[1].1
        );
    }

    let no = &rows[0].1;
    let full = &rows[3].1;
    println!(
        "\nfull affinity: {:+.0}% read IOPS, {:+.0}% write IOPS vs no affinity — \
         the \"promising gains\" the paper's Section 8 sketches.",
        100.0 * (full[0].0 / no[0].0 - 1.0),
        100.0 * (full[1].0 / no[1].0 - 1.0)
    );
    Ok(())
}
