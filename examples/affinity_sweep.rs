//! Figure 3/4-style sweep: bandwidth, utilization and GHz/Gbps cost over
//! transaction sizes for every affinity mode.
//!
//! ```bash
//! cargo run --release --example affinity_sweep            # a short sweep
//! cargo run --release --example affinity_sweep -- full    # all 7 paper sizes
//! ```

use affinity_repro::{run_experiment, AffinityMode, Direction, ExperimentConfig, PAPER_SIZES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full_sweep = std::env::args().any(|a| a == "full");
    let sizes: Vec<u64> = if full_sweep {
        PAPER_SIZES.to_vec()
    } else {
        vec![128, 4096, 65536]
    };

    for direction in [Direction::Tx, Direction::Rx] {
        println!("== {direction} ==");
        println!(
            "{:>8} | {:>22} | {:>22} | {:>22} | {:>22}",
            "size", "No Aff (Mb/s, cost)", "Proc Aff", "IRQ Aff", "Full Aff"
        );
        for &size in &sizes {
            print!("{size:>8}");
            for mode in AffinityMode::ALL {
                let mut config = ExperimentConfig::paper_sut(direction, size, mode);
                config.workload.measure_messages = (512 * 1024 / size).clamp(12, 400) as u32;
                config.workload.warmup_messages = (config.workload.measure_messages / 3).max(4);
                let m = run_experiment(&config)?.metrics;
                print!(
                    " | {:>8.0} Mb {:>6.2} c/b",
                    m.throughput_mbps(),
                    m.cost_ghz_per_gbps()
                );
            }
            println!();
        }
        println!();
    }
    println!("(cost = GHz consumed per Gbps delivered; the paper's Figure 4 metric)");
    Ok(())
}
