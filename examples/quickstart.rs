//! Quickstart: run one experiment per affinity mode and print the
//! headline numbers — the paper's core result in thirty lines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use affinity_repro::{run_experiment, AffinityMode, Direction, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("ttcp bulk transmit, 64 KB messages, 8 connections, 2 CPUs\n");
    println!(
        "{:>10} | {:>10} | {:>12} | {:>14} | {:>14}",
        "mode", "BW (Mb/s)", "GHz/Gbps", "LLC miss/msg", "clears/msg"
    );

    let mut baseline = None;
    for mode in AffinityMode::ALL {
        let mut config = ExperimentConfig::paper_sut(Direction::Tx, 65536, mode);
        config.workload.warmup_messages = 8;
        config.workload.measure_messages = 16;
        let result = run_experiment(&config)?;
        let m = &result.metrics;
        let bw = m.throughput_mbps();
        if mode == AffinityMode::None {
            baseline = Some(bw);
        }
        println!(
            "{:>10} | {:>10.0} | {:>12.2} | {:>14.0} | {:>14.0}",
            mode.label(),
            bw,
            m.cost_ghz_per_gbps(),
            m.total.llc_misses as f64 / m.messages as f64,
            m.total.machine_clears as f64 / m.messages as f64,
        );
    }

    if let Some(base) = baseline {
        let mut config = ExperimentConfig::paper_sut(Direction::Tx, 65536, AffinityMode::Full);
        config.workload.warmup_messages = 8;
        config.workload.measure_messages = 16;
        let full = run_experiment(&config)?;
        println!(
            "\nfull affinity gained {:+.0}% throughput over no affinity \
             (the paper reports up to +29%)",
            100.0 * (full.metrics.throughput_mbps() / base - 1.0)
        );
    }
    Ok(())
}
