//! The paper's conclusion, made runnable: receive-side-scaling-style
//! hardware that steers each connection's interrupts to the CPU where
//! its consumer runs — affinity benefits without any static pinning —
//! compared against the Linux 2.6 rotate-the-vector scheme from the
//! related-work section ("cache inefficiencies are still unavoidable").
//!
//! ```bash
//! cargo run --release --example rss_future
//! ```

use affinity_repro::{
    run_experiment, AffinityMode, Direction, ExperimentConfig, RunMetrics, SteerSpec,
};

fn run(label: &str, configure: impl FnOnce(&mut ExperimentConfig)) -> (String, RunMetrics) {
    let mut config = ExperimentConfig::paper_sut(Direction::Rx, 16384, AffinityMode::None);
    config.workload.warmup_messages = 10;
    config.workload.measure_messages = 30;
    configure(&mut config);
    let metrics = run_experiment(&config).expect("valid config").metrics;
    (label.to_string(), metrics)
}

fn main() {
    println!("RX 16KB, 8 connections: interrupt-steering policies compared\n");
    let rows = vec![
        run("static CPU0 (2.4 default)", |_| {}),
        run("2.6 rotation (1.5ms)", |c| {
            c.tunables.irq_rotation_cycles = 3_000_000;
        }),
        run("static split (IRQ aff)", |c| c.mode = AffinityMode::Irq),
        run("RSS dynamic steering", |c| {
            c.steer = Some(SteerSpec::flow_director_unconfigured());
        }),
        run("full affinity (pinned)", |c| c.mode = AffinityMode::Full),
    ];

    println!(
        "{:<26} | {:>9} | {:>9} | {:>12} | {:>10}",
        "policy", "BW (Mb/s)", "GHz/Gbps", "clears/msg", "IPIs"
    );
    for (label, m) in &rows {
        println!(
            "{:<26} | {:>9.0} | {:>9.2} | {:>12.0} | {:>10}",
            label,
            m.throughput_mbps(),
            m.cost_ghz_per_gbps(),
            m.total.machine_clears as f64 / m.messages as f64,
            m.resched_ipis,
        );
    }
    println!(
        "\nDynamic steering needs no taskset/smp_affinity configuration at \
         all — the adapter follows the scheduler. That is the hardware \
         direction the paper's conclusion argues for."
    );
}
