//! Oprofile-style profiling of the simulated stack: per-CPU symbol
//! reports for any event — the view behind the paper's Table 4.
//!
//! ```bash
//! cargo run --release --example profile_stack            # machine clears
//! cargo run --release --example profile_stack -- cycles  # by cycles
//! ```

use affinity_repro::substrate::sim_core::CpuId;
use affinity_repro::substrate::sim_cpu::HwEvent;
use affinity_repro::substrate::sim_prof::{symbol_report, SampleView};
use affinity_repro::{run_experiment, AffinityMode, Direction, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let event = match std::env::args().nth(1).as_deref() {
        Some("cycles") => HwEvent::Cycles,
        Some("llc") => HwEvent::LlcMiss,
        _ => HwEvent::MachineClear,
    };

    for mode in [AffinityMode::None, AffinityMode::Full] {
        let mut config = ExperimentConfig::paper_sut(Direction::Tx, 128, mode);
        config.workload.warmup_messages = 60;
        config.workload.measure_messages = 240;
        let result = run_experiment(&config)?;

        println!(
            "== TX 128B, {} — top symbols by {} ==",
            mode.label(),
            event.label()
        );
        for c in 0..result.config.cpus {
            let cpu = CpuId::new(c as u32);
            println!("CPU {c}:");
            let rows = symbol_report(
                &result.profiler,
                &result.registry,
                cpu,
                event,
                SampleView::new(1),
                8,
            );
            for row in rows {
                println!(
                    "  {:>10} {:>6.2}%  {:<24} [{}]",
                    row.count, row.percent, row.symbol, row.group
                );
            }
        }
        println!();
    }
    println!(
        "Compare with the paper's Table 4: under no affinity the IRQ \
         handlers crowd CPU0 and the TCP engine's clears concentrate on \
         whichever CPU runs the processes; under full affinity both \
         split evenly."
    );
    Ok(())
}
