//! Programming interrupt affinity by hand.
//!
//! Works at the substrate level: builds an [`sim_os::IoApic`], programs
//! `smp_affinity`-style masks the way the paper's experiments did through
//! `/proc/irq/*/smp_affinity`, and shows how routing responds; then runs
//! two whole-machine experiments to show what the steering does to IPIs
//! and machine clears.
//!
//! ```bash
//! cargo run --release --example irq_steering
//! ```

use affinity_repro::substrate::sim_core::{CpuId, IrqVector};
use affinity_repro::substrate::sim_os::{CpuMask, IoApic};
use affinity_repro::{run_experiment, AffinityMode, Direction, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The mechanism: an IO-APIC with per-vector masks. ---
    let mut apic = IoApic::new(2);
    let vectors: Vec<IrqVector> = [0x19u32, 0x1a, 0x1b, 0x1d, 0x23, 0x24, 0x25, 0x27]
        .into_iter()
        .map(IrqVector::new)
        .collect();

    println!("default routing (the Linux 2.4 / NT default):");
    for &v in &vectors {
        println!("  {:<20} -> {}", v.handler_name(), apic.route(v));
    }

    // The paper's IRQ-affinity mode: NICs 1-4 to CPU0, 5-8 to CPU1.
    for (i, &v) in vectors.iter().enumerate() {
        let cpu = CpuId::new(u32::from(i >= 4));
        apic.set_affinity(v, CpuMask::single(cpu))?;
    }
    println!("\nafter writing smp_affinity masks (paper's split):");
    for &v in &vectors {
        println!("  {:<20} -> {}", v.handler_name(), apic.route(v));
    }

    // Writes that select no online CPU are rejected, like the real /proc.
    let err = apic.set_affinity(vectors[0], CpuMask::single(CpuId::new(9)));
    println!("\nmask selecting an absent CPU: {err:?}");

    // --- The consequence: IPIs and machine clears at machine scale. ---
    println!("\nwhole-machine effect (RX, 16 KB messages):");
    for mode in [AffinityMode::None, AffinityMode::Irq] {
        let mut config = ExperimentConfig::paper_sut(Direction::Rx, 16384, mode);
        config.workload.warmup_messages = 8;
        config.workload.measure_messages = 24;
        let m = run_experiment(&config)?.metrics;
        println!(
            "  {:<9} {:>6.0} Mb/s  resched IPIs: {:>4}  machine clears/msg: {:>5.0}",
            mode.label(),
            m.throughput_mbps(),
            m.resched_ipis,
            m.total.machine_clears as f64 / m.messages as f64,
        );
    }
    Ok(())
}
